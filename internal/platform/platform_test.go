package platform

import (
	"strings"
	"testing"

	"repro/internal/taskgraph"
)

// sys3x2 builds 3 machines × 2 tasks with one data item.
func sys3x2(t *testing.T) *System {
	t.Helper()
	exec := [][]float64{
		{10, 40}, // m0
		{20, 30}, // m1
		{30, 20}, // m2
	}
	transfer := [][]float64{
		{5}, // pair (0,1)
		{6}, // pair (0,2)
		{7}, // pair (1,2)
	}
	s, err := New(2, 1, exec, transfer)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestDimensions(t *testing.T) {
	s := sys3x2(t)
	if s.NumMachines() != 3 || s.NumTasks() != 2 || s.NumItems() != 1 {
		t.Errorf("dims = %d machines, %d tasks, %d items", s.NumMachines(), s.NumTasks(), s.NumItems())
	}
}

func TestExecTime(t *testing.T) {
	s := sys3x2(t)
	cases := []struct {
		m    taskgraph.MachineID
		task taskgraph.TaskID
		want float64
	}{
		{0, 0, 10}, {0, 1, 40}, {1, 0, 20}, {1, 1, 30}, {2, 0, 30}, {2, 1, 20},
	}
	for _, tc := range cases {
		if got := s.ExecTime(tc.m, tc.task); got != tc.want {
			t.Errorf("ExecTime(%d,%d) = %v, want %v", tc.m, tc.task, got, tc.want)
		}
	}
}

func TestPairIndex(t *testing.T) {
	s := sys3x2(t)
	cases := []struct {
		a, b taskgraph.MachineID
		want int
	}{
		{0, 1, 0}, {0, 2, 1}, {1, 2, 2},
		{1, 0, 0}, {2, 0, 1}, {2, 1, 2}, // symmetric
	}
	for _, tc := range cases {
		if got := s.PairIndex(tc.a, tc.b); got != tc.want {
			t.Errorf("PairIndex(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestPairIndexLargerSuite(t *testing.T) {
	// 5 machines: pairs must enumerate 0..9 without collision.
	exec := make([][]float64, 5)
	for m := range exec {
		exec[m] = []float64{1}
	}
	transfer := make([][]float64, 10)
	for p := range transfer {
		transfer[p] = []float64{1}
	}
	s, err := New(1, 1, exec, transfer)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	seen := make(map[int]bool)
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			idx := s.PairIndex(taskgraph.MachineID(a), taskgraph.MachineID(b))
			if idx < 0 || idx >= 10 {
				t.Fatalf("PairIndex(%d,%d) = %d out of range", a, b, idx)
			}
			if seen[idx] {
				t.Fatalf("PairIndex(%d,%d) = %d collides", a, b, idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 10 {
		t.Errorf("enumerated %d pair indices, want 10", len(seen))
	}
}

func TestTransferTime(t *testing.T) {
	s := sys3x2(t)
	if got := s.TransferTime(0, 1, 0); got != 5 {
		t.Errorf("TransferTime(0,1) = %v, want 5", got)
	}
	if got := s.TransferTime(1, 0, 0); got != 5 {
		t.Errorf("TransferTime(1,0) = %v, want 5 (symmetry)", got)
	}
	if got := s.TransferTime(2, 2, 0); got != 0 {
		t.Errorf("TransferTime same machine = %v, want 0", got)
	}
}

func TestBestAndRankedMachines(t *testing.T) {
	s := sys3x2(t)
	if got := s.BestMachine(0); got != 0 {
		t.Errorf("BestMachine(task 0) = %d, want 0", got)
	}
	if got := s.BestMachine(1); got != 2 {
		t.Errorf("BestMachine(task 1) = %d, want 2", got)
	}
	r0 := s.RankedMachines(0)
	want0 := []taskgraph.MachineID{0, 1, 2}
	for i := range want0 {
		if r0[i] != want0[i] {
			t.Fatalf("RankedMachines(0) = %v, want %v", r0, want0)
		}
	}
	r1 := s.RankedMachines(1)
	want1 := []taskgraph.MachineID{2, 1, 0}
	for i := range want1 {
		if r1[i] != want1[i] {
			t.Fatalf("RankedMachines(1) = %v, want %v", r1, want1)
		}
	}
}

func TestRankedMachinesTieBreak(t *testing.T) {
	exec := [][]float64{{7}, {7}, {7}}
	transfer := [][]float64{}
	s, err := New(1, 0, exec, transfer)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r := s.RankedMachines(0)
	for i := range r {
		if r[i] != taskgraph.MachineID(i) {
			t.Errorf("tied ranking = %v, want machine-ID order", r)
			break
		}
	}
}

func TestTopMachines(t *testing.T) {
	s := sys3x2(t)
	if got := s.TopMachines(0, 2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("TopMachines(0,2) = %v", got)
	}
	if got := s.TopMachines(0, 0); len(got) != 3 {
		t.Errorf("TopMachines(0,0) = %v, want all 3", got)
	}
	if got := s.TopMachines(0, 99); len(got) != 3 {
		t.Errorf("TopMachines(0,99) = %v, want all 3", got)
	}
	if got := s.TopMachines(0, 1); len(got) != 1 || got[0] != 0 {
		t.Errorf("TopMachines(0,1) = %v", got)
	}
}

func TestMinAndMeanExecTime(t *testing.T) {
	s := sys3x2(t)
	if got := s.MinExecTime(0); got != 10 {
		t.Errorf("MinExecTime(0) = %v, want 10", got)
	}
	if got := s.MeanExecTime(0); got != 20 {
		t.Errorf("MeanExecTime(0) = %v, want 20", got)
	}
	if got := s.MeanExecTime(1); got != 30 {
		t.Errorf("MeanExecTime(1) = %v, want 30", got)
	}
}

func TestMeanTransferTime(t *testing.T) {
	s := sys3x2(t)
	if got := s.MeanTransferTime(0); got != 6 {
		t.Errorf("MeanTransferTime = %v, want 6", got)
	}
}

func TestMatricesAreCopies(t *testing.T) {
	exec := [][]float64{{1, 2}, {3, 4}}
	transfer := [][]float64{{5}}
	s, err := New(2, 1, exec, transfer)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	exec[0][0] = 999
	transfer[0][0] = 999
	if s.ExecTime(0, 0) != 1 {
		t.Error("System aliases caller's exec matrix")
	}
	if s.TransferTime(0, 1, 0) != 5 {
		t.Error("System aliases caller's transfer matrix")
	}
	em := s.ExecMatrix()
	em[0][0] = -1
	if s.ExecTime(0, 0) != 1 {
		t.Error("ExecMatrix returns an aliased copy")
	}
	tm := s.TransferMatrix()
	tm[0][0] = -1
	if s.TransferTime(0, 1, 0) != 5 {
		t.Error("TransferMatrix returns an aliased copy")
	}
}

func TestNewErrors(t *testing.T) {
	cases := []struct {
		name     string
		tasks    int
		items    int
		exec     [][]float64
		transfer [][]float64
		want     string
	}{
		{"no machines", 1, 0, nil, nil, "no machines"},
		{"bad task count", 0, 0, [][]float64{{}}, nil, "numTasks"},
		{"ragged exec", 2, 0, [][]float64{{1, 2}, {3}}, nil, "exec row"},
		{"non-positive exec", 1, 0, [][]float64{{0}}, nil, "want > 0"},
		{"negative exec", 1, 0, [][]float64{{-3}}, nil, "want > 0"},
		{"missing transfer rows", 1, 1, [][]float64{{1}, {1}}, nil, "transfer has"},
		{"ragged transfer", 1, 2, [][]float64{{1}, {1}}, [][]float64{{1}}, "transfer row"},
		{"negative transfer", 1, 1, [][]float64{{1}, {1}}, [][]float64{{-1}}, "want >= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.tasks, tc.items, tc.exec, tc.transfer)
			if err == nil {
				t.Fatalf("New succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestSingleMachineNoTransfer(t *testing.T) {
	s, err := New(2, 3, [][]float64{{1, 2}}, nil)
	if err != nil {
		t.Fatalf("New single machine: %v", err)
	}
	if got := s.TransferTime(0, 0, 2); got != 0 {
		t.Errorf("TransferTime on single machine = %v, want 0", got)
	}
	if got := s.MeanTransferTime(0); got != 0 {
		t.Errorf("MeanTransferTime on single machine = %v, want 0", got)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with invalid input did not panic")
		}
	}()
	MustNew(1, 0, nil, nil)
}
