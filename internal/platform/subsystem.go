package platform

import (
	"fmt"

	"repro/internal/taskgraph"
)

// Subsystem returns a System over the same machine suite restricted to the
// given parent task and item IDs: task i of the subsystem is parent task
// tasks[i] and item d is parent item items[d], with execution and transfer
// times copied from the parent. It is the platform half of a region
// subproblem — internal/shard pairs it with taskgraph.Induce so each DAG
// region can be scheduled by any unchanged scheduler, machine IDs staying
// globally meaningful.
func (s *System) Subsystem(tasks []taskgraph.TaskID, items []taskgraph.ItemID) (*System, error) {
	for _, t := range tasks {
		if t < 0 || int(t) >= s.tasks {
			return nil, fmt.Errorf("platform: Subsystem: task %d out of range [0,%d)", t, s.tasks)
		}
	}
	for _, d := range items {
		if d < 0 || int(d) >= s.items {
			return nil, fmt.Errorf("platform: Subsystem: item %d out of range [0,%d)", d, s.items)
		}
	}
	exec := make([][]float64, s.machines)
	for m := range exec {
		row := make([]float64, len(tasks))
		for i, t := range tasks {
			row[i] = s.exec[m][t]
		}
		exec[m] = row
	}
	var transfer [][]float64
	if len(items) > 0 {
		pairs := s.machines * (s.machines - 1) / 2
		transfer = make([][]float64, pairs)
		for p := 0; p < pairs; p++ {
			row := make([]float64, len(items))
			for i, d := range items {
				row[i] = s.transfer[p][d]
			}
			transfer[p] = row
		}
	}
	return New(len(tasks), len(items), exec, transfer)
}
