package platform

import (
	"fmt"

	"repro/internal/taskgraph"
)

// The paper assumes a fully connected machine suite ("it is assumed that
// machines are fully connected", §2). This file generalizes that: a
// Topology describes which machine pairs have direct links and at what
// per-unit cost; BuildTransfer derives the l(l−1)/2 × p transfer-time
// matrix from item sizes and shortest network paths, so every scheduler
// runs unchanged on stars, rings, meshes or arbitrary link graphs.

// Topology is a weighted undirected link graph over machines. The weight
// of a link is the time to move one unit of data across it.
type Topology struct {
	machines int
	cost     [][]float64 // cost[a][b]: direct link weight, <0 = no link
}

// NewTopology returns a topology with l machines and no links.
func NewTopology(l int) (*Topology, error) {
	if l < 1 {
		return nil, fmt.Errorf("platform: topology needs >= 1 machine, got %d", l)
	}
	t := &Topology{machines: l, cost: make([][]float64, l)}
	for i := range t.cost {
		t.cost[i] = make([]float64, l)
		for j := range t.cost[i] {
			if i != j {
				t.cost[i][j] = -1
			}
		}
	}
	return t, nil
}

// AddLink connects machines a and b with the given per-unit transfer cost.
func (t *Topology) AddLink(a, b taskgraph.MachineID, cost float64) error {
	if int(a) < 0 || int(a) >= t.machines || int(b) < 0 || int(b) >= t.machines {
		return fmt.Errorf("platform: link %d-%d out of range [0,%d)", a, b, t.machines)
	}
	if a == b {
		return fmt.Errorf("platform: self link on machine %d", a)
	}
	if cost <= 0 {
		return fmt.Errorf("platform: link %d-%d cost %v, want > 0", a, b, cost)
	}
	t.cost[a][b] = cost
	t.cost[b][a] = cost
	return nil
}

// NumMachines returns the machine count.
func (t *Topology) NumMachines() int { return t.machines }

// FullyConnected builds the paper's default: every pair linked at the
// given uniform per-unit cost.
func FullyConnected(l int, cost float64) (*Topology, error) {
	t, err := NewTopology(l)
	if err != nil {
		return nil, err
	}
	for a := 0; a < l; a++ {
		for b := a + 1; b < l; b++ {
			if err := t.AddLink(taskgraph.MachineID(a), taskgraph.MachineID(b), cost); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// Star builds a hub-and-spoke topology: machine 0 is the hub; every other
// machine links only to it.
func Star(l int, cost float64) (*Topology, error) {
	t, err := NewTopology(l)
	if err != nil {
		return nil, err
	}
	for m := 1; m < l; m++ {
		if err := t.AddLink(0, taskgraph.MachineID(m), cost); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Ring builds a cycle: machine m links to machine (m+1) mod l.
func Ring(l int, cost float64) (*Topology, error) {
	t, err := NewTopology(l)
	if err != nil {
		return nil, err
	}
	if l == 1 {
		return t, nil
	}
	for m := 0; m < l; m++ {
		n := (m + 1) % l
		if m == n {
			continue
		}
		if err := t.AddLink(taskgraph.MachineID(m), taskgraph.MachineID(n), cost); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Mesh builds a rows×cols 2D grid with links between horizontal and
// vertical neighbours.
func Mesh(rows, cols int, cost float64) (*Topology, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("platform: mesh needs rows, cols >= 1, got %d×%d", rows, cols)
	}
	t, err := NewTopology(rows * cols)
	if err != nil {
		return nil, err
	}
	id := func(r, c int) taskgraph.MachineID { return taskgraph.MachineID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := t.AddLink(id(r, c), id(r, c+1), cost); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := t.AddLink(id(r, c), id(r+1, c), cost); err != nil {
					return nil, err
				}
			}
		}
	}
	return t, nil
}

// PairCosts returns the per-unit transfer cost between every unordered
// machine pair, routed over shortest paths (Floyd–Warshall). It fails if
// the topology is disconnected.
func (t *Topology) PairCosts() ([][]float64, error) {
	l := t.machines
	const inf = 1e300
	d := make([][]float64, l)
	for i := range d {
		d[i] = make([]float64, l)
		for j := range d[i] {
			switch {
			case i == j:
				d[i][j] = 0
			case t.cost[i][j] >= 0:
				d[i][j] = t.cost[i][j]
			default:
				d[i][j] = inf
			}
		}
	}
	for k := 0; k < l; k++ {
		for i := 0; i < l; i++ {
			for j := 0; j < l; j++ {
				if v := d[i][k] + d[k][j]; v < d[i][j] {
					d[i][j] = v
				}
			}
		}
	}
	for i := 0; i < l; i++ {
		for j := 0; j < l; j++ {
			if d[i][j] >= inf {
				return nil, fmt.Errorf("platform: topology disconnected: no path %d → %d", i, j)
			}
		}
	}
	return d, nil
}

// BuildTransfer derives the transfer-time matrix (rows = PairIndex order,
// columns = data items) for items of the given sizes: transfer time =
// item size × shortest-path per-unit cost between the pair.
func (t *Topology) BuildTransfer(sizes []float64) ([][]float64, error) {
	d, err := t.PairCosts()
	if err != nil {
		return nil, err
	}
	l := t.machines
	pairs := l * (l - 1) / 2
	out := make([][]float64, pairs)
	pi := 0
	for a := 0; a < l; a++ {
		for b := a + 1; b < l; b++ {
			row := make([]float64, len(sizes))
			for i, sz := range sizes {
				row[i] = sz * d[a][b]
			}
			out[pi] = row
			pi++
		}
	}
	return out, nil
}
