package platform

import (
	"strings"
	"testing"
)

func TestFullyConnectedPairCosts(t *testing.T) {
	topo, err := FullyConnected(4, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := topo.PairCosts()
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			want := 2.5
			if a == b {
				want = 0
			}
			if d[a][b] != want {
				t.Errorf("cost[%d][%d] = %v, want %v", a, b, d[a][b], want)
			}
		}
	}
}

func TestStarRoutesThroughHub(t *testing.T) {
	topo, err := Star(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := topo.PairCosts()
	if err != nil {
		t.Fatal(err)
	}
	// Spoke to hub: one hop. Spoke to spoke: two hops via the hub.
	if d[0][3] != 3 {
		t.Errorf("hub-spoke = %v, want 3", d[0][3])
	}
	if d[1][4] != 6 {
		t.Errorf("spoke-spoke = %v, want 6 (two hops)", d[1][4])
	}
}

func TestRingShortestWay(t *testing.T) {
	topo, err := Ring(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := topo.PairCosts()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b int
		want float64
	}{
		{0, 1, 1}, {0, 2, 2}, {0, 3, 3}, {0, 4, 2}, {0, 5, 1},
	}
	for _, tc := range cases {
		if got := d[tc.a][tc.b]; got != tc.want {
			t.Errorf("ring d[%d][%d] = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestRingSingleAndPair(t *testing.T) {
	if _, err := Ring(1, 1); err != nil {
		t.Errorf("Ring(1): %v", err)
	}
	topo, err := Ring(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := topo.PairCosts()
	if err != nil {
		t.Fatal(err)
	}
	if d[0][1] != 1 {
		t.Errorf("two-machine ring d = %v", d[0][1])
	}
}

func TestMeshDistances(t *testing.T) {
	topo, err := Mesh(2, 3, 1) // machines 0..5, grid 2×3
	if err != nil {
		t.Fatal(err)
	}
	d, err := topo.PairCosts()
	if err != nil {
		t.Fatal(err)
	}
	// Corner (0,0)=m0 to corner (1,2)=m5: Manhattan distance 3.
	if d[0][5] != 3 {
		t.Errorf("mesh corner distance = %v, want 3", d[0][5])
	}
	if d[0][1] != 1 || d[0][3] != 1 {
		t.Errorf("mesh neighbour distances = %v, %v, want 1", d[0][1], d[0][3])
	}
}

func TestDisconnectedTopology(t *testing.T) {
	topo, err := NewTopology(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Machine 2 is unreachable.
	if _, err := topo.PairCosts(); err == nil || !strings.Contains(err.Error(), "disconnected") {
		t.Errorf("PairCosts on disconnected topology: err = %v", err)
	}
}

func TestAddLinkErrors(t *testing.T) {
	topo, err := NewTopology(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink(0, 5, 1); err == nil {
		t.Error("accepted out-of-range link")
	}
	if err := topo.AddLink(0, 0, 1); err == nil {
		t.Error("accepted self link")
	}
	if err := topo.AddLink(0, 1, 0); err == nil {
		t.Error("accepted zero-cost link")
	}
}

func TestBuildTransferMatchesPairIndex(t *testing.T) {
	topo, err := Star(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []float64{1, 10}
	tr, err := topo.BuildTransfer(sizes)
	if err != nil {
		t.Fatal(err)
	}
	// Build a System and confirm TransferTime routes correctly.
	exec := [][]float64{{1}, {1}, {1}, {1}}
	sys, err := New(1, 2, exec, tr)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Hub-spoke item 0: size 1 × cost 2.
	if got := sys.TransferTime(0, 2, 0); got != 2 {
		t.Errorf("hub transfer = %v, want 2", got)
	}
	// Spoke-spoke item 1: size 10 × two hops (4).
	if got := sys.TransferTime(1, 3, 1); got != 40 {
		t.Errorf("spoke transfer = %v, want 40", got)
	}
}

func TestTopologyErrors(t *testing.T) {
	if _, err := NewTopology(0); err == nil {
		t.Error("accepted zero machines")
	}
	if _, err := Mesh(0, 3, 1); err == nil {
		t.Error("accepted zero-row mesh")
	}
}
