package platform

import (
	"testing"

	"repro/internal/taskgraph"
)

func TestSubsystemRestrictsTasksAndItems(t *testing.T) {
	exec := [][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
	}
	transfer := [][]float64{ // pairs (0,1), (0,2), (1,2) × 2 items
		{10, 20},
		{30, 40},
		{50, 60},
	}
	sys := MustNew(4, 2, exec, transfer)
	sub, err := sys.Subsystem([]taskgraph.TaskID{2, 0}, []taskgraph.ItemID{1})
	if err != nil {
		t.Fatalf("Subsystem: %v", err)
	}
	if sub.NumMachines() != 3 || sub.NumTasks() != 2 || sub.NumItems() != 1 {
		t.Fatalf("dims = %d/%d/%d, want 3/2/1", sub.NumMachines(), sub.NumTasks(), sub.NumItems())
	}
	// Local task 0 is parent task 2, local task 1 is parent task 0.
	if got := sub.ExecTime(1, 0); got != 7 {
		t.Errorf("ExecTime(1, local 0) = %v, want 7 (parent task 2)", got)
	}
	if got := sub.ExecTime(2, 1); got != 9 {
		t.Errorf("ExecTime(2, local 1) = %v, want 9 (parent task 0)", got)
	}
	// Local item 0 is parent item 1.
	if got := sub.TransferTime(0, 2, 0); got != 40 {
		t.Errorf("TransferTime(0,2, local item 0) = %v, want 40", got)
	}
	if got := sub.TransferTime(1, 1, 0); got != 0 {
		t.Errorf("intra-machine transfer = %v, want 0", got)
	}
}

func TestSubsystemEmptyItems(t *testing.T) {
	sys := MustNew(1, 1, [][]float64{{1}, {2}}, [][]float64{{3}})
	sub, err := sys.Subsystem([]taskgraph.TaskID{0}, nil)
	if err != nil {
		t.Fatalf("Subsystem: %v", err)
	}
	if sub.NumItems() != 0 {
		t.Errorf("NumItems = %d, want 0", sub.NumItems())
	}
}

func TestSubsystemRejectsOutOfRange(t *testing.T) {
	sys := MustNew(1, 1, [][]float64{{1}, {2}}, [][]float64{{3}})
	if _, err := sys.Subsystem([]taskgraph.TaskID{1}, nil); err == nil {
		t.Error("Subsystem accepted an out-of-range task")
	}
	if _, err := sys.Subsystem([]taskgraph.TaskID{0}, []taskgraph.ItemID{1}); err == nil {
		t.Error("Subsystem accepted an out-of-range item")
	}
}
