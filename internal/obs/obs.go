// Package obs is the runtime observability layer: a small,
// dependency-free metrics registry (atomic counters, float gauges,
// bounded-bucket latency histograms, and labeled families of all three)
// with two exporters — Prometheus text exposition and expvar-style JSON —
// plus an HTTP middleware that instruments every endpoint and emits a
// structured (slog) access log with per-request IDs.
//
// The registry exists so a live mshd replica or a running se-dist
// coordinator is scrapeable mid-run instead of being a black box until
// its offline ledger lands. Its design constraint is the repository's
// hard invariant: instrumentation is observation-only. Every instrument
// is a plain atomic the hot path bumps without locks, nothing here draws
// from a rand stream or touches an effort ledger, and disabling the
// exporters changes no search state — the bit-identity and
// eval-count-equivalence suites pass with instrumentation enabled because
// observing a value can never perturb it.
//
// Instruments are get-or-create: asking a Registry twice for the same
// name returns the same instrument, so independent subsystems can share a
// process-wide registry without coordination. Re-registering a name with
// a different kind, label set or bucket layout panics — that is a
// programming error, not runtime input.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down (stored as atomic bits).
// The zero value is ready to use; all methods are safe for concurrent
// use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (negative to subtract) with a compare-and-swap loop.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: bounds are inclusive upper bucket edges, with an implicit +Inf
// bucket. Observations are lock-free atomic adds; the bucket layout is
// immutable after construction, so memory is bounded regardless of the
// observed range. Construct through Registry.Histogram.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; misses land in +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds — the exposition convention for
// latency histograms.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefBuckets returns the default latency bucket bounds in seconds,
// 500µs to 10s — sized for RPC and HTTP handler latencies.
func DefBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start and multiplying by factor. It panics on a non-positive start or
// n, or a factor <= 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic(fmt.Sprintf("obs: ExpBuckets(%v, %v, %d): want start > 0, factor > 1, n > 0", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// metric kinds, also the TYPE line of the text exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric: its metadata plus its children, keyed by
// label values ("" for the unlabeled singleton).
type family struct {
	name   string
	help   string
	kind   string
	labels []string
	bounds []float64 // histogram families only

	mu       sync.Mutex
	children map[string]any // *Counter | *Gauge | *Histogram
}

// keySep joins label values into a child key; label values containing it
// would collide, so it is a byte that cannot appear in UTF-8 text.
const keySep = "\xff"

// child returns the instrument for the given label values, creating it on
// first use. make builds a fresh instrument of the family's kind.
func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q: %d label values for %d labels %v", f.name, len(values), len(f.labels), f.labels))
	}
	key := strings.Join(values, keySep)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = make()
		f.children[key] = c
	}
	return c
}

// delete removes the child for the given label values, if present.
func (f *family) delete(values []string) {
	f.mu.Lock()
	delete(f.children, strings.Join(values, keySep))
	f.mu.Unlock()
}

// sortedKeys returns the child keys in deterministic (sorted) order.
// Callers hold f.mu.
func (f *family) sortedKeys() []string {
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Registry is a named collection of metric families. The zero value is
// not usable; construct with NewRegistry. All methods are safe for
// concurrent use; instrument lookups after first registration take one
// mutex acquisition, and the instruments themselves are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order, for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the named family, creating it on first use, and panics
// when the name is re-registered with conflicting metadata.
func (r *Registry) lookup(name, help, kind string, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind,
			labels:   append([]string(nil), labels...),
			bounds:   append([]float64(nil), bounds...),
			children: make(map[string]any),
		}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind || !equalStrings(f.labels, labels) || !equalFloats(f.bounds, bounds) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v", name, kind, labels, f.kind, f.labels))
	}
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the named unlabeled counter, registering it on first
// use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, kindCounter, nil, nil)
	return f.child(nil, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the named unlabeled gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, kindGauge, nil, nil)
	return f.child(nil, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns the named unlabeled histogram, registering it on
// first use. bounds are ascending upper bucket edges (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets()
	}
	checkBounds(name, bounds)
	f := r.lookup(name, help, kindHistogram, nil, bounds)
	return f.child(nil, func() any { return newHistogram(f.bounds) }).(*Histogram)
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ f *family }

// CounterVec returns the named labeled counter family, registering it on
// first use.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.lookup(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return new(Counter) }).(*Counter)
}

// Delete drops the counter for the given label values (stale children of
// a bounded-lifetime label, e.g. a torn-down session).
func (v *CounterVec) Delete(values ...string) { v.f.delete(values) }

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ f *family }

// GaugeVec returns the named labeled gauge family, registering it on
// first use.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.lookup(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return new(Gauge) }).(*Gauge)
}

// Delete drops the gauge for the given label values.
func (v *GaugeVec) Delete(values ...string) { v.f.delete(values) }

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ f *family }

// HistogramVec returns the named labeled histogram family, registering
// it on first use. bounds are ascending upper bucket edges
// (nil = DefBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets()
	}
	checkBounds(name, bounds)
	return &HistogramVec{r.lookup(name, help, kindHistogram, labels, bounds)}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

// Delete drops the histogram for the given label values.
func (v *HistogramVec) Delete(values ...string) { v.f.delete(values) }

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

func checkBounds(name string, bounds []float64) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q: bucket bounds not strictly ascending at %d: %v", name, i, bounds))
		}
	}
}
