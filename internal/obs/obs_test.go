package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentObserveMatchesSerialTotals is the registry property test:
// hammering one counter, one gauge and one histogram from many
// goroutines must yield exactly the totals the same observations produce
// serially — the instruments are atomics, so no update may be lost.
func TestConcurrentObserveMatchesSerialTotals(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "ops")
	g := reg.Gauge("test_level", "level")
	h := reg.Histogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})

	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Add(2)
				g.Add(0.5)
				h.Observe(float64(j%3) * 0.05) // 0, 0.05, 0.1
			}
		}(i)
	}
	wg.Wait()

	if want := uint64(goroutines * perG * 2); c.Value() != want {
		t.Errorf("counter = %d, want %d", c.Value(), want)
	}
	if want := float64(goroutines*perG) * 0.5; math.Abs(g.Value()-want) > 1e-6 {
		t.Errorf("gauge = %v, want %v", g.Value(), want)
	}
	if want := uint64(goroutines * perG); h.Count() != want {
		t.Errorf("histogram count = %d, want %d", h.Count(), want)
	}
	// Bucket placement: 0 and 0.05 land in le=0.1's cumulative count via
	// le=0.01 (0 only); 0.1 lands in le=0.1 too (inclusive upper bound).
	sh := newHistogram([]float64{0.01, 0.1, 1})
	for i := 0; i < goroutines; i++ {
		for j := 0; j < perG; j++ {
			sh.Observe(float64(j%3) * 0.05)
		}
	}
	for i := range sh.buckets {
		if got, want := h.buckets[i].Load(), sh.buckets[i].Load(); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
	if math.Abs(h.Sum()-sh.Sum()) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), sh.Sum())
	}
}

// TestGetOrCreateReturnsSameInstrument: registering a name twice yields
// the identical instrument, and label-distinguished children are stable
// per value set.
func TestGetOrCreateReturnsSameInstrument(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a_total", "a") != reg.Counter("a_total", "a") {
		t.Error("unlabeled counter not stable across lookups")
	}
	v := reg.CounterVec("b_total", "b", "worker")
	if v.With("x") != v.With("x") {
		t.Error("labeled child not stable across lookups")
	}
	if v.With("x") == v.With("y") {
		t.Error("distinct label values share a child")
	}
	v.With("x").Add(3)
	v.Delete("x")
	if got := v.With("x").Value(); got != 0 {
		t.Errorf("deleted child came back with value %d", got)
	}
}

// TestKindMismatchPanics: re-registering a name as a different kind is a
// programming error and must fail loudly.
func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("x_total", "x")
}

// expositionLine matches one Prometheus text sample:
// name{k="v",...} value — the format /metrics must emit. Label values
// are quoted strings (escapes allowed), so a "}" inside a value — mux
// patterns contain them — does not end the label set.
var expositionLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)` +
		`(\{[a-zA-Z0-9_]+="(?:[^"\\]|\\.)*"(?:,[a-zA-Z0-9_]+="(?:[^"\\]|\\.)*")*\})?` +
		` (-?[0-9.e+\-Inf]+)$`)

// parseExposition is the test-side exposition parser: it validates every
// line is a comment or a well-formed sample and returns samples keyed by
// "name{labels}".
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := expositionLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed exposition line: %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		samples[m[1]+m[2]] = v
	}
	return samples
}

// TestPrometheusExposition exercises the text exporter end to end:
// counters, gauges, labeled families and histograms must all round-trip
// through the parser with the observed values, cumulative buckets must
// be monotone, and HELP/TYPE must precede each family.
func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total", "jobs").Add(7)
	reg.Gauge("depth", "queue depth").Set(2.5)
	reg.CounterVec("rpc_total", "rpcs", "worker", "code").With("w1", "200").Add(3)
	h := reg.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP jobs_total jobs\n# TYPE jobs_total counter\njobs_total 7\n",
		"# TYPE lat_seconds histogram\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	s := parseExposition(t, text)
	checks := map[string]float64{
		"jobs_total":                        7,
		"depth":                             2.5,
		`rpc_total{worker="w1",code="200"}`: 3,
		`lat_seconds_bucket{le="0.1"}`:      1,
		`lat_seconds_bucket{le="1"}`:        2,
		`lat_seconds_bucket{le="+Inf"}`:     3,
		"lat_seconds_count":                 3,
	}
	for key, want := range checks {
		if got, ok := s[key]; !ok || got != want {
			t.Errorf("sample %q = %v (present %v), want %v", key, got, ok, want)
		}
	}
	if math.Abs(s["lat_seconds_sum"]-5.55) > 1e-9 {
		t.Errorf("lat_seconds_sum = %v, want 5.55", s["lat_seconds_sum"])
	}
}

// TestJSONExport: the expvar-style exporter must produce valid JSON with
// bare numbers for unlabeled instruments, label-keyed objects for
// families, and cumulative buckets for histograms.
func TestJSONExport(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total", "jobs").Add(4)
	reg.GaugeVec("load", "load", "worker").With("w2").Set(1.5)
	reg.Histogram("lat_seconds", "latency", []float64{1}).Observe(0.5)

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if got := out["jobs_total"].(float64); got != 4 {
		t.Errorf("jobs_total = %v, want 4", got)
	}
	if got := out["load"].(map[string]any)["worker=w2"].(float64); got != 1.5 {
		t.Errorf(`load["worker=w2"] = %v, want 1.5`, got)
	}
	hist := out["lat_seconds"].(map[string]any)
	if got := hist["count"].(float64); got != 1 {
		t.Errorf("lat_seconds count = %v, want 1", got)
	}
	if got := hist["buckets"].(map[string]any)["1"].(float64); got != 1 {
		t.Errorf("lat_seconds le=1 bucket = %v, want 1", got)
	}
}

// TestExpBuckets: bounds grow geometrically and stay strictly ascending
// (the histogram constructor's invariant).
func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 4, 5)
	if len(b) != 5 || b[0] != 0.001 || math.Abs(b[4]-0.256) > 1e-12 {
		t.Errorf("ExpBuckets = %v", b)
	}
	checkBounds("test", b)
}

// TestRequestIDsUnique: IDs must be distinct under concurrency — they
// correlate coordinator and worker access logs, so collisions would
// merge unrelated requests.
func TestRequestIDsUnique(t *testing.T) {
	const n = 64
	ids := make(chan string, n)
	for i := 0; i < n; i++ {
		go func() { ids <- NewRequestID() }()
	}
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		select {
		case id := <-ids:
			if seen[id] {
				t.Fatalf("duplicate request ID %q", id)
			}
			seen[id] = true
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for IDs")
		}
	}
}
