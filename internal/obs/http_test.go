package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestInstrumentRecordsByPattern: the middleware must label samples by
// the matched mux pattern (bounded cardinality), count status codes, and
// echo request IDs — generated when absent, propagated when present.
func TestInstrumentRecordsByPattern(t *testing.T) {
	reg := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/things/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	var logBuf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&logBuf, nil))
	h := Instrument(NewHTTPMetrics(reg, "test"), log, mux)

	for _, path := range []string{"/v1/things/a", "/v1/things/b"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Header().Get(RequestIDHeader) == "" {
			t.Error("no request ID echoed on response")
		}
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/nope", nil)
	req.Header.Set(RequestIDHeader, "corr-42")
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "corr-42" {
		t.Errorf("request ID = %q, want propagated corr-42", got)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	s := parseExposition(t, buf.String())
	if got := s[`test_http_requests_total{endpoint="GET /v1/things/{id}",code="200"}`]; got != 2 {
		t.Errorf("pattern-labeled counter = %v, want 2 in:\n%s", got, buf.String())
	}
	if got := s[`test_http_requests_total{endpoint="unmatched",code="404"}`]; got != 1 {
		t.Errorf("unmatched counter = %v, want 1", got)
	}
	if got := s[`test_http_request_duration_seconds_count{endpoint="GET /v1/things/{id}"}`]; got != 2 {
		t.Errorf("latency histogram count = %v, want 2", got)
	}
	if !strings.Contains(logBuf.String(), "id=corr-42") {
		t.Errorf("access log missing propagated request ID:\n%s", logBuf.String())
	}
}

// TestInstrumentPreservesFlusher: the serving layer's NDJSON progress
// stream asserts http.Flusher on its writer; wrapping must not hide it.
func TestInstrumentPreservesFlusher(t *testing.T) {
	reg := NewRegistry()
	sawFlusher := false
	h := Instrument(NewHTTPMetrics(reg, "test"), nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, sawFlusher = w.(http.Flusher)
		w.WriteHeader(http.StatusAccepted)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if !sawFlusher {
		t.Error("wrapped writer lost http.Flusher")
	}
	if rec.Code != http.StatusAccepted {
		t.Errorf("status = %d, want 202", rec.Code)
	}
}
