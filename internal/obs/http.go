package obs

// HTTP instrumentation: one middleware that gives every endpoint a
// request counter and latency histogram (labeled by the mux route
// pattern, so cardinality stays bounded no matter what paths clients
// send), an in-flight gauge, a propagated per-request ID, and a
// structured slog access line. Wrapping is observation-only: handlers
// see the same request and the same ResponseWriter capabilities
// (flushing for NDJSON streams included).

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// RequestIDHeader is the header request IDs travel in, both directions:
// clients send one so server logs correlate with theirs, and the
// middleware echoes it (or a generated one) on every response.
const RequestIDHeader = "X-Request-ID"

// procID distinguishes processes in correlated logs; crypto/rand is
// deliberate — request IDs must never draw from a seeded math/rand
// stream, or observation would perturb search determinism.
var procID = func() string {
	var b [4]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}()

var reqSeq atomic.Uint64

// NewRequestID returns a process-unique request ID ("<proc>-<seq>").
// IDs are cheap (one atomic add) and ordered within a process, which
// makes interleaved access logs reconstructable.
func NewRequestID() string {
	return procID + "-" + strconv.FormatUint(reqSeq.Add(1), 10)
}

// HTTPMetrics is the instrument set Instrument records into, shared by
// every wrapped handler on a registry.
type HTTPMetrics struct {
	requests *CounterVec   // {endpoint, code}
	latency  *HistogramVec // {endpoint}
	inflight *Gauge
}

// NewHTTPMetrics registers the middleware's instruments under the given
// namespace: <ns>_http_requests_total{endpoint,code},
// <ns>_http_request_duration_seconds{endpoint}, and
// <ns>_http_in_flight_requests.
func NewHTTPMetrics(reg *Registry, namespace string) *HTTPMetrics {
	return &HTTPMetrics{
		requests: reg.CounterVec(namespace+"_http_requests_total",
			"HTTP requests served, by route pattern and status code.", "endpoint", "code"),
		latency: reg.HistogramVec(namespace+"_http_request_duration_seconds",
			"HTTP request latency in seconds, by route pattern.", nil, "endpoint"),
		inflight: reg.Gauge(namespace+"_http_in_flight_requests",
			"HTTP requests currently being served."),
	}
}

// Instrument wraps next with request metrics, request-ID propagation and
// an optional structured access log. The endpoint label is the
// http.ServeMux pattern that matched (requests no route matched are
// labeled "unmatched"), so label cardinality is bounded by the route
// table. log may be nil to disable access logging; metrics are always
// recorded.
func Instrument(m *HTTPMetrics, log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		m.inflight.Add(1)
		defer m.inflight.Add(-1)
		rw := &respWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rw, r)
		elapsed := time.Since(start)
		// ServeMux sets Pattern on the request in place, so after dispatch
		// the matched route is visible here without per-route wrapping.
		endpoint := r.Pattern
		if endpoint == "" {
			endpoint = "unmatched"
		}
		m.requests.With(endpoint, strconv.Itoa(rw.code())).Inc()
		m.latency.With(endpoint).Observe(elapsed.Seconds())
		if log != nil {
			log.Info("request",
				"id", id,
				"method", r.Method,
				"path", r.URL.Path,
				"endpoint", endpoint,
				"status", rw.code(),
				"bytes", rw.bytes,
				"elapsed_ms", float64(elapsed)/float64(time.Millisecond),
				"remote", r.RemoteAddr,
			)
		}
	})
}

// respWriter captures the status code and body size. It forwards Flush
// (NDJSON progress streams depend on it) and exposes Unwrap for
// http.ResponseController, so wrapping loses no writer capability the
// serving layer uses.
type respWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// WriteHeader records the status code.
func (w *respWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Write counts body bytes (an implicit 200 if no header was written).
func (w *respWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports flushing.
func (w *respWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (w *respWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// code returns the recorded status, defaulting to 200 for handlers that
// never write.
func (w *respWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}
