package obs

// Exporters: Prometheus text exposition (the /metrics scrape format) and
// expvar-style JSON (/debug/vars). Both walk the registry under its lock
// but read instrument values atomically — a scrape racing the hot path
// sees a consistent-enough point-in-time view without ever blocking an
// observation.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered family in Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per
// family, one sample line per child (histograms expand to cumulative
// _bucket series plus _sum and _count). Families appear in registration
// order and children in sorted label order, so output is deterministic
// for a fixed registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		if len(f.children) == 0 {
			f.mu.Unlock()
			continue
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, key := range f.sortedKeys() {
			writeChild(bw, f, key, f.children[key])
		}
		f.mu.Unlock()
	}
	return bw.Flush()
}

func writeChild(w *bufio.Writer, f *family, key string, c any) {
	labels := labelString(f.labels, key, "")
	switch m := c.(type) {
	case *Counter:
		fmt.Fprintf(w, "%s%s %d\n", f.name, labels, m.Value())
	case *Gauge:
		fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatFloat(m.Value()))
	case *Histogram:
		var cum uint64
		for i, b := range m.bounds {
			cum += m.buckets[i].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, key, formatFloat(b)), cum)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, key, "+Inf"), m.Count())
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labels, formatFloat(m.Sum()))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name, labels, m.Count())
	}
}

// labelString renders {k="v",...} for the child key, appending an le
// label when non-empty (histogram buckets). Empty label sets render as
// no braces at all.
func labelString(names []string, key, le string) string {
	var parts []string
	if len(names) > 0 {
		values := strings.Split(key, keySep)
		for i, n := range names {
			// %q escapes quotes, backslashes and newlines — the three
			// characters the exposition format requires escaped.
			parts = append(parts, fmt.Sprintf("%s=%q", n, values[i]))
		}
	}
	if le != "" {
		parts = append(parts, fmt.Sprintf("le=%q", le))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// escapeHelp keeps HELP lines single-line.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// jsonHistogram is the JSON exporter's histogram shape: cumulative
// bucket counts keyed by upper bound, plus sum and count.
type jsonHistogram struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets map[string]uint64 `json:"buckets"`
}

// WriteJSON writes the registry as one JSON object in the spirit of
// expvar: each family name maps to its value — a bare number for
// unlabeled counters and gauges, an object keyed by `k=v,...` label
// strings for labeled families, and a {count, sum, buckets} object for
// histograms.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()
	out := make(map[string]any, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		if len(f.labels) == 0 {
			if c, ok := f.children[""]; ok {
				out[f.name] = jsonValue(c)
			}
		} else {
			m := make(map[string]any, len(f.children))
			for _, key := range f.sortedKeys() {
				m[jsonKey(f.labels, key)] = jsonValue(f.children[key])
			}
			out[f.name] = m
		}
		f.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func jsonKey(names []string, key string) string {
	values := strings.Split(key, keySep)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n + "=" + values[i]
	}
	return strings.Join(parts, ",")
}

func jsonValue(c any) any {
	switch m := c.(type) {
	case *Counter:
		return m.Value()
	case *Gauge:
		return m.Value()
	case *Histogram:
		h := jsonHistogram{Count: m.Count(), Sum: m.Sum(), Buckets: make(map[string]uint64, len(m.bounds)+1)}
		var cum uint64
		for i, b := range m.bounds {
			cum += m.buckets[i].Load()
			h.Buckets[formatFloat(b)] = cum
		}
		h.Buckets["+Inf"] = m.Count()
		return h
	}
	return nil
}

// Handler returns the /metrics endpoint: the registry in Prometheus text
// exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// VarsHandler returns the /debug/vars endpoint: the registry as
// expvar-style JSON.
func (r *Registry) VarsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	})
}
