//go:build !race

package repro_test

// raceEnabled reports whether the race detector instruments this build;
// wall-clock comparisons skip under it (see sharding_test.go).
const raceEnabled = false
