// Race: the paper's §5.3 comparison as a live terminal experiment — any
// set of registered schedulers, all given the same wall-clock budget on a
// heavily communicating workload (CCR = 1, the paper's Figure 6 class),
// rendered as an ASCII convergence chart.
//
//	go run ./examples/race
//	go run ./examples/race -budget 10s -tasks 100 -machines 20
//	go run ./examples/race -algos se,ga,sa,tabu,heft
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/schedule"
	"repro/internal/scheduler"
	"repro/internal/textplot"
	"repro/internal/workload"
)

func main() {
	var (
		tasks    = flag.Int("tasks", 60, "subtasks")
		machines = flag.Int("machines", 12, "machines")
		budget   = flag.Duration("budget", 3*time.Second, "wall-clock budget per scheduler")
		seed     = flag.Int64("seed", 1, "seed")
		algos    = flag.String("algos", "se,ga,sa,tabu", "comma-separated registered schedulers to race")
	)
	flag.Parse()

	w := workload.MustGenerate(workload.Params{
		Tasks:         *tasks,
		Machines:      *machines,
		Connectivity:  2.5,
		Heterogeneity: workload.MediumHeterogeneity,
		CCR:           workload.HighCCR, // heavily communicating subtasks
		Seed:          *seed,
	})
	fmt.Printf("workload: %s\n", w)
	fmt.Printf("lower bound: %.0f\n", schedule.LowerBound(w.Graph, w.System))
	fmt.Printf("budget: %v per scheduler\n\n", *budget)

	// Every contender comes from the scheduler registry through the one
	// generic race adapter, with the shared paper tuning.
	names, err := scheduler.ParseNames(*algos)
	if err != nil {
		log.Fatal(err)
	}
	var contenders []runner.Contender
	for _, name := range names {
		contenders = append(contenders, runner.Entry(name, name, w.Graph, w.System,
			experiments.TunedOptions(name, *machines, *seed, 0, 0)...))
	}

	series, err := runner.Race(context.Background(), *budget, contenders)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(textplot.Render(series, textplot.Options{
		Title:  "best schedule length vs time (CCR = 1)",
		XLabel: "time (s)",
		YLabel: "schedule length",
	}))
	for _, s := range series {
		fmt.Printf("%-18s final %8.0f   (%d improvements recorded)\n", s.Name, s.Last(), len(s.Points))
	}
}
