// Race: the paper's §5.3 comparison as a live terminal experiment —
// simulated evolution vs the Wang et al. genetic algorithm vs the
// simulated-annealing extension, all given the same wall-clock budget on a
// heavily communicating workload (CCR = 1, the paper's Figure 6 class),
// rendered as an ASCII convergence chart.
//
//	go run ./examples/race
//	go run ./examples/race -budget 10s -tasks 100 -machines 20
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/runner"
	"repro/internal/sa"
	"repro/internal/schedule"
	"repro/internal/tabu"
	"repro/internal/textplot"
	"repro/internal/workload"
)

func main() {
	var (
		tasks    = flag.Int("tasks", 60, "subtasks")
		machines = flag.Int("machines", 12, "machines")
		budget   = flag.Duration("budget", 3*time.Second, "wall-clock budget per scheduler")
		seed     = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	w := workload.MustGenerate(workload.Params{
		Tasks:         *tasks,
		Machines:      *machines,
		Connectivity:  2.5,
		Heterogeneity: workload.MediumHeterogeneity,
		CCR:           workload.HighCCR, // heavily communicating subtasks
		Seed:          *seed,
	})
	fmt.Printf("workload: %s\n", w)
	fmt.Printf("lower bound: %.0f\n", schedule.LowerBound(w.Graph, w.System))
	fmt.Printf("budget: %v per scheduler\n\n", *budget)

	series, err := runner.Race(*budget, []runner.Contender{
		runner.SEContender("SE", w.Graph, w.System, core.Options{
			Y:    (*machines + 1) / 2,
			Seed: *seed,
		}),
		runner.GAContender("GA (Wang et al.)", w.Graph, w.System, ga.Options{
			PopulationSize: 200,
			CrossoverRate:  0.4,
			MutationRate:   0.02,
			Seed:           *seed,
		}),
		runner.SAContender("SA", w.Graph, w.System, sa.Options{Seed: *seed}),
		runner.TabuContender("Tabu", w.Graph, w.System, tabu.Options{Seed: *seed}),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(textplot.Render(series, textplot.Options{
		Title:  "best schedule length vs time (CCR = 1)",
		XLabel: "time (s)",
		YLabel: "schedule length",
	}))
	for _, s := range series {
		fmt.Printf("%-18s final %8.0f   (%d improvements recorded)\n", s.Name, s.Last(), len(s.Points))
	}
}
