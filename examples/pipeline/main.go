// Pipeline: schedule a realistic signal-processing application — the kind
// of workload the paper's introduction motivates for heterogeneous
// computing — across a mixed suite of machines, and compare every
// scheduler in the repository on it.
//
// The application ingests four sensor streams; each stream runs an FFT,
// then a matched filter; a fusion step combines the streams, a detector
// and a tracker run in parallel on the fused data, and a reporter joins
// their outputs. Machine 0 is a vector unit (fast FFTs), machine 1 a
// general CPU, machine 2 a small accelerator that excels at the detector
// kernels — exactly the "each subtask is well suited to a single machine
// architecture" setting of the paper's §1.
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/scheduler"
	"repro/internal/taskgraph"
)

func main() {
	const streams = 4
	b := taskgraph.NewBuilder(3*streams + 4)

	// Per-stream chains: ingest → fft → filter.
	var ingest, fft, filter [streams]taskgraph.TaskID
	for i := 0; i < streams; i++ {
		ingest[i] = b.AddTask(fmt.Sprintf("ingest%d", i))
	}
	for i := 0; i < streams; i++ {
		fft[i] = b.AddTask(fmt.Sprintf("fft%d", i))
	}
	for i := 0; i < streams; i++ {
		filter[i] = b.AddTask(fmt.Sprintf("filter%d", i))
	}
	fuse := b.AddTask("fuse")
	detect := b.AddTask("detect")
	track := b.AddTask("track")
	report := b.AddTask("report")

	for i := 0; i < streams; i++ {
		b.AddItem(ingest[i], fft[i], 800) // raw samples
		b.AddItem(fft[i], filter[i], 400) // spectra
		b.AddItem(filter[i], fuse, 200)   // filtered features
	}
	b.AddItem(fuse, detect, 300)
	b.AddItem(fuse, track, 300)
	b.AddItem(detect, report, 50)
	b.AddItem(track, report, 50)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Execution times (rows: vector unit, CPU, accelerator). The vector
	// unit is ~4× faster on FFTs; the accelerator ~3× faster on
	// detect/track kernels; ingest and report are I/O-ish and fastest on
	// the CPU.
	n := g.NumTasks()
	exec := make([][]float64, 3)
	for m := range exec {
		exec[m] = make([]float64, n)
	}
	setCosts := func(t taskgraph.TaskID, vector, cpu, accel float64) {
		exec[0][t], exec[1][t], exec[2][t] = vector, cpu, accel
	}
	for i := 0; i < streams; i++ {
		setCosts(ingest[i], 250, 120, 300)
		setCosts(fft[i], 100, 420, 380)
		setCosts(filter[i], 160, 300, 200)
	}
	setCosts(fuse, 220, 180, 240)
	setCosts(detect, 400, 380, 130)
	setCosts(track, 420, 400, 140)
	setCosts(report, 150, 60, 180)

	// Transfer times: item size divided by per-link bandwidth. The
	// accelerator hangs off a slower bus.
	bandwidth := map[[2]int]float64{
		{0, 1}: 10, // vector ↔ cpu: fast interconnect
		{0, 2}: 4,  // vector ↔ accelerator
		{1, 2}: 4,  // cpu ↔ accelerator
	}
	pairs := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	transfer := make([][]float64, len(pairs))
	for pi, pair := range pairs {
		row := make([]float64, g.NumItems())
		for d, it := range g.Items() {
			row[d] = it.Size / bandwidth[pair]
		}
		transfer[pi] = row
	}

	sys, err := platform.New(n, g.NumItems(), exec, transfer)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pipeline: %d tasks, %d data items, 3 machines (vector, cpu, accelerator)\n", n, g.NumItems())
	fmt.Printf("lower bound: %.0f\n\n", schedule.LowerBound(g, sys))
	fmt.Printf("%-10s %10s\n", "scheduler", "makespan")

	// Every registered scheduler gets the same budget; small problem, so a
	// thorough SE search (negative bias, §4.4) via per-algorithm options.
	type row struct {
		name     string
		makespan float64
	}
	var (
		rows   []row
		seBest schedule.String
	)
	for _, name := range scheduler.Names() {
		opts := []scheduler.Option{scheduler.WithSeed(1)}
		if name == "se" || name == "se-ils" {
			opts = append(opts, scheduler.WithBias(-0.2))
		}
		s, err := scheduler.Get(name, opts...)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Schedule(context.Background(), g, sys, scheduler.Budget{MaxIterations: 400})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{name, res.Makespan})
		if name == "se" {
			seBest = res.Best
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].makespan < rows[j].makespan })
	for _, r := range rows {
		fmt.Printf("%-10s %10.0f\n", r.name, r.makespan)
	}

	// Where did SE put things?
	eval := schedule.NewEvaluator(g, sys)
	start, finish := eval.StartTimes(seBest)
	names := []string{"vector", "cpu", "accel"}
	fmt.Println("\nSE schedule:")
	for m, order := range seBest.MachineOrders(3) {
		fmt.Printf("  %-7s:", names[m])
		for _, t := range order {
			fmt.Printf(" %s[%.0f→%.0f]", g.Name(t), start[t], finish[t])
		}
		fmt.Println()
	}
}
