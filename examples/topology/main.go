// Topology: study how the machine interconnect changes scheduling — a
// generalization of the paper, which assumes a fully connected suite (§2).
//
// An FFT task graph (a classic communication-heavy benchmark DAG) is
// realized on four interconnects with identical machines and identical
// target CCR: fully connected, star, ring and 2D mesh. For each topology
// the example schedules with HEFT and with SE, and reports makespan,
// machine utilization, and cross-machine traffic. Sparser topologies pay
// multi-hop transfer costs, so schedulers must co-locate more.
//
//	go run ./examples/topology
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

func main() {
	const (
		points   = 16 // 16-point FFT → 80 tasks
		machines = 8
		ccr      = 1.0
	)
	g, err := workload.FFT(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FFT(%d): %d tasks, %d data items, %d machines, CCR %.1f\n\n",
		points, g.NumTasks(), g.NumItems(), machines, ccr)

	topos := []struct {
		name  string
		build func() (*platform.Topology, error)
	}{
		{"full", func() (*platform.Topology, error) { return platform.FullyConnected(machines, 1) }},
		{"star", func() (*platform.Topology, error) { return platform.Star(machines, 1) }},
		{"ring", func() (*platform.Topology, error) { return platform.Ring(machines, 1) }},
		{"mesh2x4", func() (*platform.Topology, error) { return platform.Mesh(2, 4, 1) }},
	}

	fmt.Printf("%-8s %-6s %10s %12s %8s %8s\n",
		"topology", "algo", "makespan", "utilization", "cross", "comm")
	for _, tc := range topos {
		topo, err := tc.build()
		if err != nil {
			log.Fatal(err)
		}
		w, err := workload.RealizeOn("fft", g, topo, workload.ShapeParams{
			Machines:      machines,
			Heterogeneity: 4,
			CCR:           ccr,
			Seed:          1,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Both algorithms come from the scheduler registry.
		for _, algo := range []string{"heft", "se"} {
			s, err := scheduler.Get(algo,
				scheduler.WithSeed(1),
				scheduler.WithY(machines/2),
			)
			if err != nil {
				log.Fatal(err)
			}
			res, err := s.Schedule(context.Background(), w.Graph, w.System,
				scheduler.Budget{MaxIterations: 300})
			if err != nil {
				log.Fatal(err)
			}
			report(w, tc.name, algo, res.Best)
		}
	}
	fmt.Println("\ncross = data items crossing machines; comm = their total transfer time")
	fmt.Println("(sparser interconnects → schedulers co-locate more, utilization drops)")
}

func report(w *workload.Workload, topo, algo string, s schedule.String) {
	a := schedule.Analyze(w.Graph, w.System, s)
	fmt.Printf("%-8s %-6s %10.0f %11.0f%% %8d %8.0f\n",
		topo, algo, a.Makespan, 100*a.Utilization, a.CrossTransfers, a.CommTime)
}
