// Quickstart: schedule the paper's worked example (Figure 1) with
// simulated evolution.
//
// It walks the full public API surface: building a DAG with data items,
// describing the heterogeneous machine suite (the E and Tr matrices),
// evaluating an encoding string, and running the SE scheduler.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/taskgraph"
)

func main() {
	// 1. The application: 7 coarse-grained subtasks, 6 data items
	//    (the DAG of the paper's Figure 1a).
	b := taskgraph.NewBuilder(7)
	b.AddTasks(7)
	b.AddItem(0, 1, 150) // d0: s0 → s1
	b.AddItem(0, 2, 200) // d1: s0 → s2
	b.AddItem(1, 3, 173) // d2: s1 → s3
	b.AddItem(1, 4, 235) // d3: s1 → s4
	b.AddItem(2, 5, 180) // d4: s2 → s5
	b.AddItem(2, 6, 160) // d5: s2 → s6
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. The HC system: two machines with an execution-time matrix E
	//    (rows = machines, columns = subtasks) and a transfer-time matrix
	//    Tr (rows = machine pairs, columns = data items).
	sys, err := platform.New(7, 6,
		[][]float64{
			{400, 600, 900, 700, 900, 500, 600}, // m0
			{700, 800, 600, 800, 600, 400, 500}, // m1
		},
		[][]float64{
			{150, 200, 173, 235, 180, 160}, // pair (m0, m1)
		})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Evaluate the solution the paper shows in Figure 2:
	//    m0: s0, s3, s4 and m1: s1, s2, s5, s6.
	paperString := schedule.String{
		{Task: 0, Machine: 0}, {Task: 1, Machine: 1}, {Task: 2, Machine: 1},
		{Task: 5, Machine: 1}, {Task: 6, Machine: 1}, {Task: 3, Machine: 0},
		{Task: 4, Machine: 0},
	}
	eval := schedule.NewEvaluator(g, sys)
	fmt.Printf("paper's Figure-2 string: %s\n", paperString.Format())
	fmt.Printf("its schedule length:     %.0f (the paper's C4)\n\n", eval.Makespan(paperString))

	// 4. Run simulated evolution. Small problem, so a thorough search:
	//    negative selection bias (§4.4) and all machines allowed (Y = 0).
	res, err := core.Run(g, sys, core.Options{
		Bias:          -0.2,
		Y:             0,
		MaxIterations: 500,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SE best string:          %s\n", res.Best.Format())
	fmt.Printf("SE schedule length:      %.0f after %d iterations (%v)\n\n",
		res.BestMakespan, res.Iterations, res.Elapsed.Round(1e6))

	// 5. Show the resulting per-machine schedule.
	start, finish := eval.StartTimes(res.Best)
	for m, order := range res.Best.MachineOrders(sys.NumMachines()) {
		fmt.Printf("m%d:", m)
		for _, t := range order {
			fmt.Printf("  %s[%.0f→%.0f]", g.Name(t), start[t], finish[t])
		}
		fmt.Println()
	}
}
