// Sweep: reproduce the paper's §5.2 study of the Y parameter in miniature.
//
// Y limits how many best-matching machines a subtask may be assigned to
// during SE allocation. The paper finds that with LOW machine
// heterogeneity a larger Y monotonically improves solutions, while with
// HIGH heterogeneity quality peaks at a middle Y. This example runs the
// sweep over several seeds, prints a table of mean final schedule lengths,
// and reports the measured runtime growth with Y.
//
//	go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/internal/runner"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

func main() {
	const (
		tasks    = 60
		machines = 12
		iters    = 200
		trials   = 5
	)
	yValues := []int{2, 3, 5, 8, 12}

	fmt.Printf("SE on %d tasks × %d machines, %d iterations, %d seeds per cell\n\n",
		tasks, machines, iters, trials)

	for _, het := range []struct {
		name  string
		value float64
	}{
		{"low heterogeneity", workload.LowHeterogeneity},
		{"high heterogeneity", workload.HighHeterogeneity},
	} {
		w := workload.MustGenerate(workload.Params{
			Tasks:         tasks,
			Machines:      machines,
			Connectivity:  2.5,
			Heterogeneity: het.value,
			CCR:           0.5,
			Seed:          7,
		})
		fmt.Printf("%s (%s)\n", het.name, w.Name)
		fmt.Printf("  %4s %16s %12s\n", "Y", "mean makespan", "mean time")

		bestY, bestMean := 0, 0.0
		for _, y := range yValues {
			var totalNanos atomic.Int64 // trials run concurrently
			sum, _, err := runner.Trials(trials, 2, 1, func(seed int64) (float64, error) {
				s, err := scheduler.Get("se", scheduler.WithY(y), scheduler.WithSeed(seed))
				if err != nil {
					return 0, err
				}
				res, err := s.Schedule(context.Background(), w.Graph, w.System,
					scheduler.Budget{MaxIterations: iters})
				if err != nil {
					return 0, err
				}
				totalNanos.Add(int64(res.Elapsed))
				return res.Makespan, nil
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %4d %16.0f %12v\n", y, sum.Mean, (time.Duration(totalNanos.Load()) / trials).Round(time.Millisecond))
			if bestY == 0 || sum.Mean < bestMean {
				bestY, bestMean = y, sum.Mean
			}
		}
		fmt.Printf("  best Y: %d (paper §5.2: largest wins under low heterogeneity,\n", bestY)
		fmt.Printf("          a middle value wins under high heterogeneity)\n\n")
	}
}
