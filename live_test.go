// Online-scheduling acceptance tests: the warm-start claim README's
// "Online scheduling" section makes for internal/live, pinned down on a
// generated churn trace — warm rescheduling must beat the cold-restart
// ablation on evaluation effort, replays must be bit-identical across
// same-seed runs, and a served live session must survive a crash
// mid-trace with its amended DAG intact.
package repro_test

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/live"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/workload"
)

// liveTrace generates the shared churn scenario: a small base workload
// hit by events ticks of mixed churn, sized so a full warm+cold replay
// pair stays in test-suite time.
func liveTrace(t testing.TB, events int, seed int64) *live.Trace {
	t.Helper()
	tr, err := live.GenerateTrace(live.TraceParams{
		Base: workload.Params{
			Tasks:         24,
			Machines:      5,
			Connectivity:  2.5,
			Heterogeneity: 6,
			CCR:           0.5,
			Seed:          seed,
		},
		Events: events,
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// segmentBounds turns a report's Segments index into half-open sample
// ranges [start, end), one per re-convergence window. Several events can
// land on one tick, so boundaries are deduplicated.
func segmentBounds(rep *live.Report) [][2]int {
	var bounds [][2]int
	prev := -1
	for _, s := range rep.Segments {
		if s == prev {
			continue
		}
		if prev >= 0 {
			bounds = append(bounds, [2]int{prev, s})
		}
		prev = s
	}
	if prev >= 0 {
		bounds = append(bounds, [2]int{prev, len(rep.Samples)})
	}
	return bounds
}

// evalsToTarget is the evaluation effort a run spends inside one segment
// before its best makespan first reaches target; if the segment never
// reaches it, the full segment spend is charged.
func evalsToTarget(rep *live.Report, start, end int, target float64) uint64 {
	var base uint64
	if start > 0 {
		base = rep.Samples[start-1].Evaluations
	}
	for i := start; i < end; i++ {
		if rep.Samples[i].Best <= target {
			return rep.Samples[i].Evaluations - base
		}
	}
	return rep.Samples[end-1].Evaluations - base
}

// TestLiveWarmStartBeatsColdRestart enforces the headline claim: across
// every re-convergence window of a churn trace, warm-starting the live
// engine through the amendment must take strictly fewer total
// evaluations to get within 1% of the cold restart's end-of-window
// makespan than the cold restart itself spends.
func TestLiveWarmStartBeatsColdRestart(t *testing.T) {
	tr := liveTrace(t, 30, 7)
	ctx := context.Background()

	warm, err := live.Replay(ctx, tr, live.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := live.Replay(ctx, tr, live.Options{Seed: 1, Cold: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Reschedules != cold.Reschedules || warm.Reschedules != len(tr.Events) {
		t.Fatalf("reschedules warm=%d cold=%d, want both %d", warm.Reschedules, cold.Reschedules, len(tr.Events))
	}
	// Both replays walk the same ticks, so their segment structure agrees.
	bounds := segmentBounds(cold)
	if len(bounds) == 0 {
		t.Fatal("trace produced no re-convergence segments")
	}

	var warmTotal, coldTotal uint64
	for _, b := range bounds {
		start, end := b[0], b[1]
		// Target: within 1% of what the cold restart converges to by the
		// end of this window.
		target := cold.Samples[end-1].Best * 1.01
		warmTotal += evalsToTarget(warm, start, end, target)
		coldTotal += evalsToTarget(cold, start, end, target)
	}
	t.Logf("evaluations to re-reach within 1%% of cold's makespan, summed over %d segments: warm %d, cold %d (%.2fx)",
		len(bounds), warmTotal, coldTotal, float64(coldTotal)/float64(warmTotal))
	if warmTotal >= coldTotal {
		t.Errorf("warm start spent %d evaluations re-converging, cold restart %d; warm must be strictly cheaper", warmTotal, coldTotal)
	}
}

// TestLiveReplayBitIdentical: equal (trace, options) must produce
// bit-identical reports — every sample, segment, and the final solution
// string — in both warm and cold mode. This is the determinism contract
// the CI live-smoke golden gate builds on.
func TestLiveReplayBitIdentical(t *testing.T) {
	tr := liveTrace(t, 30, 11)
	ctx := context.Background()
	for _, cold := range []bool{false, true} {
		opts := live.Options{Seed: 5, Cold: cold}
		a, err := live.Replay(ctx, tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := live.Replay(ctx, tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		aj, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		bj, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if string(aj) != string(bj) {
			t.Errorf("cold=%v: two same-seed replays produced different reports:\n  first:  %.200s\n  second: %.200s", cold, aj, bj)
		}
	}
}

// TestLiveServedSessionSurvivesCrashMidTrace drives the first half of a
// churn trace through a durable serve session — amendments interleaved
// with search steps — crashes the manager and store mid-trace, and
// requires boot replay to recover the session with the amended DAG
// intact and the search still warm-steppable through the rest of the
// trace.
func TestLiveServedSessionSurvivesCrashMidTrace(t *testing.T) {
	tr := liveTrace(t, 12, 19)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mgr := serve.NewManager(serve.Options{Store: st})

	base := tr.Base
	info, err := mgr.Create(serve.CreateSessionRequest{Params: &base})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.OpenSearch(info.ID, serve.RunRequest{Algorithm: "se-live", Seed: 5}); err != nil {
		t.Fatal(err)
	}

	half := len(tr.Events) / 2
	for _, ev := range tr.Events[:half] {
		if _, err := mgr.ApplyEvent(info.ID, ev); err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.StepSearch(info.ID, serve.StepRequest{Steps: 4}); err != nil {
			t.Fatal(err)
		}
	}
	before, err := mgr.Info(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	searchBefore, err := mgr.SearchInfo(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if before.Tasks <= info.Tasks {
		t.Fatalf("half-trace session has %d tasks, want growth beyond the base %d", before.Tasks, info.Tasks)
	}

	// Land the write-behind queue, then kill everything without any
	// graceful-shutdown path.
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	mgr.Crash()
	st.Crash()

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := serve.NewManager(serve.Options{Store: st2})
	t.Cleanup(func() {
		mgr2.Close()
		st2.Close()
	})
	if got := mgr2.RecoveredSessions(); got != 1 {
		t.Fatalf("boot replay recovered %d sessions, want 1", got)
	}
	after, err := mgr2.Info(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.Tasks != before.Tasks || after.Machines != before.Machines {
		t.Fatalf("recovered session shape %d tasks / %d machines, want the amended %d / %d",
			after.Tasks, after.Machines, before.Tasks, before.Machines)
	}
	searchAfter, err := mgr2.SearchInfo(info.ID)
	if err != nil {
		t.Fatalf("recovered session lost its search: %v", err)
	}
	if searchAfter.Iterations != searchBefore.Iterations {
		t.Fatalf("recovered search at %d iterations, want %d", searchAfter.Iterations, searchBefore.Iterations)
	}

	// The recovered session keeps absorbing the rest of the trace.
	for _, ev := range tr.Events[half:] {
		if _, err := mgr2.ApplyEvent(info.ID, ev); err != nil {
			t.Fatal(err)
		}
		if _, err := mgr2.StepSearch(info.ID, serve.StepRequest{Steps: 4}); err != nil {
			t.Fatal(err)
		}
	}
	best, err := mgr2.SearchBest(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if best.Makespan <= 0 || best.Solution == "" {
		t.Fatalf("post-recovery search best = %v %q, want a real schedule", best.Makespan, best.Solution)
	}
}
