// Doc-sync guards: the README's preset table and algorithm lists are
// hand-written prose, so these tests regenerate the same facts from the
// code (the presets map, the scheduler registry) and fail when the two
// drift — the documentation equivalent of a golden test.
package repro_test

import (
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/scheduler"
	"repro/internal/workload"
)

func readme(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("README.md: %v", err)
	}
	return string(b)
}

// TestReadmePresetTableMatchesCode parses the README preset table and
// asserts it lists exactly workload.PresetNames() with the true task,
// machine and item counts — the same numbers `mshc -list-presets`
// generates from the presets map.
func TestReadmePresetTableMatchesCode(t *testing.T) {
	md := readme(t)
	row := regexp.MustCompile("(?m)^\\| `([a-z0-9]+)` \\| (\\d+) \\| (\\d+) \\| (\\d+) \\|$")
	documented := map[string][3]int{}
	for _, m := range row.FindAllStringSubmatch(md, -1) {
		tasks, _ := strconv.Atoi(m[2])
		machines, _ := strconv.Atoi(m[3])
		items, _ := strconv.Atoi(m[4])
		documented[m[1]] = [3]int{tasks, machines, items}
	}
	names := workload.PresetNames()
	if len(documented) != len(names) {
		t.Errorf("README documents %d presets, code has %d (%v)", len(documented), len(names), names)
	}
	for _, name := range names {
		got, ok := documented[name]
		if !ok {
			t.Errorf("preset %q missing from the README table", name)
			continue
		}
		w, err := workload.Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		want := [3]int{w.Graph.NumTasks(), w.System.NumMachines(), w.Graph.NumItems()}
		if got != want {
			t.Errorf("README row for %q = %v, want %v", name, got, want)
		}
	}
}

// TestReadmeListsEveryRegisteredAlgorithm: each registry name must appear
// in the README as inline code, and the "N registered algorithms" blurb
// must state the real count.
func TestReadmeListsEveryRegisteredAlgorithm(t *testing.T) {
	md := readme(t)
	for _, name := range scheduler.Names() {
		if !strings.Contains(md, "`"+name+"`") {
			t.Errorf("algorithm %q not mentioned in README", name)
		}
	}
	count := fmt.Sprintf("%d registered algorithms", len(scheduler.Names()))
	if !strings.Contains(md, count) {
		t.Errorf("README does not state %q — the registry blurb drifted", count)
	}
}
