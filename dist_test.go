// Distributed fan-out acceptance test: the wall-clock claim README's
// "Multi-machine" section makes for se-dist, pinned on the same 500-task
// preset the sharding acceptance test measures. Importing internal/dist
// registers se-dist, so the doc-sync guards also hold the README to the
// grown registry.
package repro_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	_ "repro/internal/dist"
	"repro/internal/schedule"
	"repro/internal/scheduler"
	"repro/internal/serve"
)

// startDistWorker brings up one in-process mshd worker over real HTTP.
func startDistWorker(t testing.TB) *httptest.Server {
	t.Helper()
	mgr := serve.NewManager(serve.Options{})
	srv := httptest.NewServer(serve.NewServer(mgr))
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	return srv
}

// TestDistributedFanOutBeatsSerialWallClock enforces the distributed
// speedup: se-dist dispatching 6 regions to two local mshd workers must
// finish the same generation budget faster than serial se, stay
// bit-identical to the in-process se-shard sweep it distributes, and keep
// serial's schedule quality. The regions carry the real work, so even
// with HTTP/JSON and a snapshot round-trip per batched round the fan-out
// keeps most of the ~3x sharding win; the 1.3x bar leaves room for
// loaded CI machines.
func TestDistributedFanOutBeatsSerialWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock comparison")
	}
	if raceEnabled {
		t.Skip("race-detector scheduling overhead distorts wall-clock ratios")
	}
	w := xlargeWorkload(t)
	const iters, shards, batch = 25, 6, 5

	srvA := startDistWorker(t)
	srvB := startDistWorker(t)

	serial, serialTime := timedRun(t, w, "se", iters,
		scheduler.WithSeed(1), scheduler.WithY(4))

	// Drive se-dist through the registry's resumable surface so the
	// budget is exact: iters/batch rounds at batch generations each is
	// the same iters generations serial executes.
	ds, err := scheduler.Open("se-dist", w.Graph, w.System,
		scheduler.WithSeed(1), scheduler.WithY(4), scheduler.WithShards(shards),
		scheduler.WithRoundBatch(batch), scheduler.WithWorkerURLs(srvA.URL, srvB.URL))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < iters/batch; i++ {
		if _, more := ds.Step(context.Background()); !more {
			t.Fatalf("se-dist done after %d rounds", i)
		}
	}
	dist := ds.Best()
	distTime := time.Since(start)

	if err := schedule.Validate(dist.Best, w.Graph, w.System); err != nil {
		t.Fatalf("distributed best is invalid: %v", err)
	}

	// Where generations run never changes what they compute: the
	// distributed run is the sharded run, bit for bit.
	ss, err := scheduler.Open("se-shard", w.Graph, w.System,
		scheduler.WithSeed(1), scheduler.WithY(4), scheduler.WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		ss.Step(context.Background())
	}
	sharded := ss.Best()
	if dist.Makespan != sharded.Makespan || dist.Best.Format() != sharded.Best.Format() {
		t.Errorf("se-dist makespan %.0f differs from se-shard %.0f", dist.Makespan, sharded.Makespan)
	}
	if dist.GenesEvaluated != sharded.GenesEvaluated {
		t.Errorf("se-dist evaluated %d genes, se-shard %d — effort ledger drifted",
			dist.GenesEvaluated, sharded.GenesEvaluated)
	}

	speedup := float64(serialTime) / float64(distTime)
	t.Logf("serial %v (makespan %.0f) vs distributed %v (makespan %.0f): %.2fx",
		serialTime, serial.Makespan, distTime, dist.Makespan, speedup)
	if speedup < 1.3 {
		t.Errorf("distributed speedup = %.2fx, want >= 1.3x", speedup)
	}
	if dist.Makespan > serial.Makespan*1.05 {
		t.Errorf("distributed makespan %.0f more than 5%% worse than serial %.0f",
			dist.Makespan, serial.Makespan)
	}
}
